// Benchmarks regenerating the paper's evaluation artifact (Table 1): one
// benchmark per algorithm row and per lower-bound row. Each benchmark
// executes full wake-up runs and reports the distributed-complexity
// measures as custom metrics:
//
//	msgs        messages per run
//	timeunits   normalized time span (rounds for synchronous algorithms)
//	advmaxbits  maximum advice length per node
//
// Run with:
//
//	go test -bench=. -benchmem
//
// EXPERIMENTS.md records the measured values and compares them to the
// paper's bounds.
package riseandshine_test

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"riseandshine"
	"riseandshine/internal/core"
	"riseandshine/internal/experiment"
	"riseandshine/internal/graph"
	"riseandshine/internal/lowerbound"
	"riseandshine/internal/sim"
)

// benchRun executes b.N runs of one configuration through the parallel
// experiment Runner and reports metrics. Per-run seeds derive from the
// (master seed, run index) pair, so the reported complexity metrics are
// identical no matter how many workers execute the matrix.
func benchRun(b *testing.B, spec experiment.RunSpec) {
	b.Helper()
	b.ReportAllocs()
	runner := experiment.Runner{MasterSeed: 1}
	specs := make([]experiment.RunSpec, b.N)
	for i := range specs {
		specs[i] = spec
	}
	results, err := runner.Run(specs)
	if err != nil {
		b.Fatal(err)
	}
	var msgs, span, advMax float64
	for _, rr := range results {
		res := rr.Res
		if !res.AllAwake {
			b.Fatalf("only %d/%d nodes woke", res.AwakeCount, res.N)
		}
		msgs += float64(res.Messages)
		if res.Rounds > 0 {
			span += float64(res.Rounds)
		} else {
			span += float64(res.Span)
		}
		advMax = math.Max(advMax, float64(res.AdviceMaxBits))
	}
	b.ReportMetric(msgs/float64(b.N), "msgs")
	b.ReportMetric(span/float64(b.N), "timeunits")
	b.ReportMetric(advMax, "advmaxbits")
}

// sizes used across the Table 1 benches; kept moderate so the full suite
// runs in minutes.
var benchSizes = []int{256, 512, 1024}

// BenchmarkTable1 regenerates the algorithm rows of Table 1.
func BenchmarkTable1(b *testing.B) {
	b.Run("Theorem3_DFSRank", func(b *testing.B) {
		for _, n := range benchSizes {
			g := riseandshine.RandomConnected(n, 8.0/float64(n), int64(n))
			b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
				benchRun(b, experiment.RunSpec{
					G:         g,
					Algorithm: "dfs-rank",
					Schedule:  "staggered:1,2,4,8:64",
					Delays:    "random",
				})
			})
		}
	})

	b.Run("Theorem4_FastWakeUp", func(b *testing.B) {
		for _, n := range benchSizes {
			g := riseandshine.RandomConnected(n, 64.0/float64(n), int64(n))
			b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
				benchRun(b, experiment.RunSpec{
					G:         g,
					Algorithm: "fast-wakeup",
					Schedule:  "all",
				})
			})
		}
	})

	b.Run("Corollary1_FIP06", func(b *testing.B) {
		for _, n := range benchSizes {
			g := riseandshine.RandomConnected(n, 8.0/float64(n), int64(n))
			b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
				benchRun(b, experiment.RunSpec{
					G:           g,
					Algorithm:   "fip06",
					Delays:      "random",
					RandomPorts: true,
				})
			})
		}
	})

	b.Run("Theorem5A_Threshold", func(b *testing.B) {
		for _, n := range benchSizes {
			g := riseandshine.RandomConnected(n, 8.0/float64(n), int64(n))
			b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
				benchRun(b, experiment.RunSpec{
					G:           g,
					Algorithm:   "threshold",
					Delays:      "random",
					RandomPorts: true,
				})
			})
		}
	})

	b.Run("Theorem5B_CEN", func(b *testing.B) {
		for _, n := range benchSizes {
			g := riseandshine.RandomConnected(n, 8.0/float64(n), int64(n))
			b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
				benchRun(b, experiment.RunSpec{
					G:           g,
					Algorithm:   "cen",
					Delays:      "random",
					RandomPorts: true,
				})
			})
		}
	})

	b.Run("Theorem6_Spanner", func(b *testing.B) {
		for _, k := range []int{2, 3} {
			for _, n := range benchSizes {
				g := riseandshine.RandomConnected(n, 24.0/float64(n), int64(n))
				b.Run(fmt.Sprintf("k=%d/n=%d", k, n), func(b *testing.B) {
					benchRun(b, experiment.RunSpec{
						G:           g,
						Algorithm:   "spanner",
						K:           k,
						Schedule:    "random:4",
						Delays:      "random",
						RandomPorts: true,
					})
				})
			}
		}
	})

	b.Run("Corollary2_SpannerLogN", func(b *testing.B) {
		for _, n := range benchSizes {
			g := riseandshine.RandomConnected(n, 24.0/float64(n), int64(n))
			b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
				benchRun(b, experiment.RunSpec{
					G:           g,
					Algorithm:   "spanner", // K=0 selects k=⌈log2 n⌉
					Schedule:    "random:4",
					Delays:      "random",
					RandomPorts: true,
				})
			})
		}
	})

	b.Run("Baseline_Flood", func(b *testing.B) {
		for _, n := range benchSizes {
			g := riseandshine.RandomConnected(n, 8.0/float64(n), int64(n))
			b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
				benchRun(b, experiment.RunSpec{
					G:         g,
					Algorithm: "flood",
					Delays:    "random",
				})
			})
		}
	})
}

// BenchmarkLowerBound regenerates the lower-bound rows of Table 1.
func BenchmarkLowerBound(b *testing.B) {
	b.Run("Theorem1_AdviceTradeoff", func(b *testing.B) {
		const n = 256
		in, err := lowerbound.BuildG(n, 1)
		if err != nil {
			b.Fatal(err)
		}
		for beta := 0; beta <= 8; beta += 4 {
			b.Run(fmt.Sprintf("beta=%d", beta), func(b *testing.B) {
				b.ReportAllocs()
				var msgs float64
				for i := 0; i < b.N; i++ {
					rep, err := lowerbound.Run(in,
						sim.Model{Knowledge: sim.KT0, Bandwidth: sim.Congest},
						lowerbound.AdviceProber{},
						lowerbound.AdviceProberOracle{Inst: in, Beta: beta},
						sim.UnitDelay{}, int64(i))
					if err != nil {
						b.Fatal(err)
					}
					if !rep.Solved {
						b.Fatalf("only %d/%d needles found", rep.NeedlesFound, len(in.W))
					}
					msgs += float64(rep.Result.Messages)
				}
				b.ReportMetric(msgs/float64(b.N), "msgs")
				b.ReportMetric(float64(n)*float64(n)/math.Exp2(float64(beta)), "lowerboundmsgs")
			})
		}
	})

	b.Run("Theorem2_TimeMessageTradeoff", func(b *testing.B) {
		for _, q := range []int{13, 23} {
			in, err := lowerbound.BuildGkProjective(q, 1)
			if err != nil {
				b.Fatal(err)
			}
			n := float64(len(in.V))
			lbCurve := math.Pow(n, 1+1/in.EffectiveK())
			for _, entry := range []struct {
				name string
				alg  sim.Algorithm
			}{
				{"broadcast", lowerbound.CenterBroadcast{}},
				{"dfs-rank", core.DFSRank{}},
			} {
				b.Run(fmt.Sprintf("q=%d/%s", q, entry.name), func(b *testing.B) {
					b.ReportAllocs()
					var msgs, span float64
					for i := 0; i < b.N; i++ {
						rep, err := lowerbound.Run(in,
							sim.Model{Knowledge: sim.KT1, Bandwidth: sim.Local},
							entry.alg, nil, sim.UnitDelay{}, int64(i))
						if err != nil {
							b.Fatal(err)
						}
						if !rep.Solved {
							b.Fatalf("only %d/%d needles found", rep.NeedlesFound, len(in.W))
						}
						msgs += float64(rep.Result.Messages)
						span += float64(rep.Result.Span)
					}
					b.ReportMetric(msgs/float64(b.N), "msgs")
					b.ReportMetric(span/float64(b.N), "timeunits")
					b.ReportMetric(lbCurve, "lowerboundmsgs")
				})
			}
		}
	})
}

// BenchmarkAblation quantifies the design choices called out in DESIGN.md:
// the random-rank discard of Theorem 3, the binary sibling heap of
// Theorem 5(B), and the root subsampling of Theorem 4.
func BenchmarkAblation(b *testing.B) {
	b.Run("DFSRanks", func(b *testing.B) {
		g := riseandshine.RandomConnected(300, 0.03, 1)
		for _, disable := range []bool{false, true} {
			name := "ranked"
			if disable {
				name = "unranked"
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				var msgs float64
				for i := 0; i < b.N; i++ {
					res, err := sim.RunAsync(sim.Config{
						Graph: g,
						Model: sim.Model{Knowledge: sim.KT1, Bandwidth: sim.Local},
						Adversary: sim.Adversary{
							Schedule: riseandshine.RandomWake{Count: 32, Seed: int64(i)},
							Delays:   riseandshine.RandomDelay{Seed: int64(i)},
						},
						Seed: int64(i),
					}, core.DFSRank{DisableRanks: disable})
					if err != nil {
						b.Fatal(err)
					}
					msgs += float64(res.Messages)
				}
				b.ReportMetric(msgs/float64(b.N), "msgs")
			})
		}
	})

	b.Run("CENSiblingEncoding", func(b *testing.B) {
		g := riseandshine.Star(1024)
		ports := riseandshine.RandomPorts(g, 1)
		for _, unary := range []bool{false, true} {
			name := "binary-heap"
			if unary {
				name = "unary-chain"
			}
			oracle := core.CENOracle{Unary: unary}
			adv, bits, err := oracle.Advise(g, ports)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				var span float64
				for i := 0; i < b.N; i++ {
					res, err := sim.RunAsync(sim.Config{
						Graph: g,
						Ports: ports,
						Model: sim.Model{Knowledge: sim.KT0, Bandwidth: sim.Congest},
						Adversary: sim.Adversary{
							Schedule: riseandshine.WakeSingle(0),
						},
						Advice:     adv,
						AdviceBits: bits,
					}, core.CEN{})
					if err != nil {
						b.Fatal(err)
					}
					span += float64(res.WakeSpan)
				}
				b.ReportMetric(span/float64(b.N), "timeunits")
			})
		}
	})

	b.Run("FastWakeUpSampling", func(b *testing.B) {
		g := riseandshine.RandomConnected(256, 0.25, 1)
		for _, tc := range []struct {
			name string
			prob float64
		}{
			{"sampled", 0},
			{"all-roots", 1},
		} {
			b.Run(tc.name, func(b *testing.B) {
				b.ReportAllocs()
				var msgs float64
				for i := 0; i < b.N; i++ {
					res, err := sim.RunSync(sim.SyncConfig{
						Graph:    g,
						Model:    sim.Model{Knowledge: sim.KT1, Bandwidth: sim.Local},
						Schedule: riseandshine.WakeAll{},
						Seed:     int64(i),
					}, core.FastWakeUp{RootProb: tc.prob})
					if err != nil {
						b.Fatal(err)
					}
					msgs += float64(res.Messages)
				}
				b.ReportMetric(msgs/float64(b.N), "msgs")
			})
		}
	})
}

// BenchmarkSubstrate measures the cost of the structural machinery the
// oracles and lower-bound constructions depend on.
func BenchmarkSubstrate(b *testing.B) {
	b.Run("GreedySpanner", func(b *testing.B) {
		for _, k := range []int{2, 3} {
			g := riseandshine.RandomConnected(512, 0.1, 1)
			b.Run(fmt.Sprintf("k=%d/n=512", k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := graph.GreedySpanner(g, k); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	})
	b.Run("Girth", func(b *testing.B) {
		g := graph.ProjectivePlaneIncidence(13)
		b.Run("pg13", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if g.Girth() != 6 {
					b.Fatal("wrong girth")
				}
			}
		})
	})
	b.Run("BuildGk", func(b *testing.B) {
		b.Run("projective-q23", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := lowerbound.BuildGkProjective(23, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("gq-q5", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := lowerbound.BuildGkGQ(5, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("DegeneracyOrder", func(b *testing.B) {
		b.ReportAllocs()
		g := riseandshine.RandomConnected(2048, 0.01, 2)
		for i := 0; i < b.N; i++ {
			graph.DegeneracyOrder(g)
		}
	})
	b.Run("CENOracle", func(b *testing.B) {
		b.ReportAllocs()
		g := riseandshine.RandomConnected(2048, 0.01, 3)
		ports := riseandshine.RandomPorts(g, 4)
		oracle := core.CENOracle{}
		for i := 0; i < b.N; i++ {
			if _, _, err := oracle.Advise(g, ports); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRunAsync measures raw asynchronous-engine throughput on the
// workloads used to validate the allocation-free hot path: a dense
// complete graph, a sparse random graph, a regular torus, and the
// diameter-dominated sparse extremes (path, complete binary tree). Every node
// is woken at time zero and floods, so the event count is fixed per
// topology and the benchmark isolates engine overhead (event heap,
// per-edge FIFO bookkeeping, delay derivation).
func BenchmarkRunAsync(b *testing.B) {
	for _, spec := range []string{"complete:2000", "gnp:5000:0.01", "torus:64x64", "path:20000", "binary:16383"} {
		g, err := experiment.ParseGraph(spec, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(spec, func(b *testing.B) {
			b.ReportAllocs()
			events := 0
			for i := 0; i < b.N; i++ {
				res, err := sim.RunAsync(sim.Config{
					Graph: g,
					Model: sim.Model{Knowledge: sim.KT0, Bandwidth: sim.Congest},
					Adversary: sim.Adversary{
						Schedule: sim.WakeAll{},
						Delays:   sim.RandomDelay{Seed: int64(i)},
					},
					Seed: int64(i),
				}, core.Flood{})
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkRunAsyncExecTrace repeats two BenchmarkRunAsync workloads with
// the flight recorder attached (wall clock, as the CLIs inject it). A
// sequential run records only the three lifecycle spans, so the delta
// against the matching BenchmarkRunAsync sub-benchmarks bounds the
// enabled-tracer overhead from above the untraced cost; the disabled-path
// cost is pinned separately (nil-check only, TestRecorderZeroAllocs).
func BenchmarkRunAsyncExecTrace(b *testing.B) {
	for _, spec := range []string{"torus:64x64", "binary:16383"} {
		g, err := experiment.ParseGraph(spec, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(spec, func(b *testing.B) {
			b.ReportAllocs()
			rec := riseandshine.NewExecRecorder(riseandshine.ExecTimeClock())
			events := 0
			for i := 0; i < b.N; i++ {
				res, err := sim.RunAsync(sim.Config{
					Graph: g,
					Model: sim.Model{Knowledge: sim.KT0, Bandwidth: sim.Congest},
					Adversary: sim.Adversary{
						Schedule: sim.WakeAll{},
						Delays:   sim.RandomDelay{Seed: int64(i)},
					},
					Seed:   int64(i),
					Tracer: rec,
				}, core.Flood{})
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkRunAsyncCalendar repeats the sparse BenchmarkRunAsync workloads
// with the calendar event queue selected. Results are byte-identical to the
// heap (TestCalendarEngineByteIdentical); the delta against the matching
// BenchmarkRunAsync sub-benchmarks is the queue's contribution alone. The
// sparse specs are the calendar's target regime — dense complete graphs
// stay on the default heap.
func BenchmarkRunAsyncCalendar(b *testing.B) {
	for _, spec := range []string{"gnp:5000:0.01", "torus:64x64", "path:20000", "binary:16383"} {
		g, err := experiment.ParseGraph(spec, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(spec, func(b *testing.B) {
			b.ReportAllocs()
			events := 0
			for i := 0; i < b.N; i++ {
				res, err := sim.RunAsync(sim.Config{
					Graph: g,
					Model: sim.Model{Knowledge: sim.KT0, Bandwidth: sim.Congest},
					Adversary: sim.Adversary{
						Schedule: sim.WakeAll{},
						Delays:   sim.RandomDelay{Seed: int64(i)},
					},
					Seed:  int64(i),
					Queue: sim.QueueCalendar,
				}, core.Flood{})
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkRunAsyncReuse repeats the dense BenchmarkRunAsync workload with
// every reuse lever engaged — a prebuilt Setup shared across iterations and
// a recycled engine — so allocs/op shows the steady-state per-run constant
// rather than the cold-start cost. Results are byte-identical to the
// fresh-engine path (see TestEngineReuseByteIdentical).
func BenchmarkRunAsyncReuse(b *testing.B) {
	g, err := experiment.ParseGraph("complete:2000", 1)
	if err != nil {
		b.Fatal(err)
	}
	model := sim.Model{Knowledge: sim.KT0, Bandwidth: sim.Congest}
	setup, err := sim.NewSetup(g, nil, model, 0, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("complete:2000", func(b *testing.B) {
		b.ReportAllocs()
		eng := &sim.AsyncEngine{}
		events := 0
		for i := 0; i < b.N; i++ {
			res, err := eng.Run(sim.Config{
				Graph: g,
				Model: model,
				Adversary: sim.Adversary{
					Schedule: sim.WakeAll{},
					Delays:   sim.RandomDelay{Seed: int64(i)},
				},
				Seed:  int64(i),
				Setup: setup,
			}, core.Flood{})
			if err != nil {
				b.Fatal(err)
			}
			events += res.Events
		}
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	})
}

// BenchmarkRunAsyncMetrics repeats the dense BenchmarkRunAsync workload
// with the metrics observer attached, measuring the observation overhead.
// The histograms are allocation-free and lock-free, so the observed run
// should stay within ~1.3x of the unobserved complete:2000 baseline.
func BenchmarkRunAsyncMetrics(b *testing.B) {
	g, err := experiment.ParseGraph("complete:2000", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("complete:2000", func(b *testing.B) {
		b.ReportAllocs()
		events := 0
		for i := 0; i < b.N; i++ {
			reg := riseandshine.NewMetricsRegistry()
			res, err := sim.RunAsync(sim.Config{
				Graph: g,
				Model: sim.Model{Knowledge: sim.KT0, Bandwidth: sim.Congest},
				Adversary: sim.Adversary{
					Schedule: sim.WakeAll{},
					Delays:   sim.RandomDelay{Seed: int64(i)},
				},
				Seed:     int64(i),
				Observer: riseandshine.NewMetricsObserver(reg, g.N()),
			}, core.Flood{})
			if err != nil {
				b.Fatal(err)
			}
			events += res.Events
		}
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	})
}

// BenchmarkRunSharded measures the conservative parallel engine across
// shard counts on one dense and two sparse 10⁵⁺-node workloads, with a
// prebuilt Setup and a reused engine per shard count. shards:1 takes the
// sequential fallback and is the baseline the speedup curve divides by;
// results are byte-identical at every count (TestShardedByteIdentical), so
// the deltas are pure scheduling. The delay adversary carries a 0.25
// lookahead — windows a quarter of τ wide — since zero-lookahead delays
// admit no conservative parallelism at all.
func BenchmarkRunSharded(b *testing.B) {
	for _, spec := range []string{"complete:2000", "gnp:100000:0.0001", "torus:400x400"} {
		g, err := experiment.ParseGraph(spec, 1)
		if err != nil {
			b.Fatal(err)
		}
		model := sim.Model{Knowledge: sim.KT0, Bandwidth: sim.Congest}
		setup, err := sim.NewSetup(g, nil, model, 0, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/shards:%d", spec, p), func(b *testing.B) {
				b.ReportAllocs()
				eng := &sim.ShardedEngine{}
				events := 0
				for i := 0; i < b.N; i++ {
					res, err := eng.Run(sim.Config{
						Graph: g,
						Model: model,
						Adversary: sim.Adversary{
							Schedule: sim.WakeAll{},
							Delays:   sim.RandomDelay{Seed: int64(i), Min: 0.25},
						},
						Seed:   int64(i),
						Setup:  setup,
						Shards: p,
					}, core.Flood{})
					if err != nil {
						b.Fatal(err)
					}
					events += res.Events
				}
				b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
			})
		}
	}
}

// BenchmarkRunShardedExecTrace repeats one BenchmarkRunSharded workload
// with the flight recorder attached: per-window busy/barrier spans on
// every shard track plus merge/replay/window records on the coordinator —
// the tracer's worst-case span rate. The delta against the matching
// BenchmarkRunSharded sub-benchmarks is the enabled-tracer overhead.
func BenchmarkRunShardedExecTrace(b *testing.B) {
	const spec = "torus:400x400"
	g, err := experiment.ParseGraph(spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	model := sim.Model{Knowledge: sim.KT0, Bandwidth: sim.Congest}
	setup, err := sim.NewSetup(g, nil, model, 0, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{2, 4} {
		b.Run(fmt.Sprintf("%s/shards:%d", spec, p), func(b *testing.B) {
			b.ReportAllocs()
			eng := &sim.ShardedEngine{}
			rec := riseandshine.NewExecRecorder(riseandshine.ExecTimeClock())
			events := 0
			for i := 0; i < b.N; i++ {
				res, err := eng.Run(sim.Config{
					Graph: g,
					Model: model,
					Adversary: sim.Adversary{
						Schedule: sim.WakeAll{},
						Delays:   sim.RandomDelay{Seed: int64(i), Min: 0.25},
					},
					Seed:   int64(i),
					Setup:  setup,
					Shards: p,
					Tracer: rec,
				}, core.Flood{})
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkRunner measures harness scaling: a fixed 16-run matrix executed
// at increasing worker counts. ns/op is the wall time of the full matrix;
// the complexity metrics are identical across worker counts by
// construction (seeds derive from the run index).
func BenchmarkRunner(b *testing.B) {
	specs := make([]experiment.RunSpec, 16)
	for i := range specs {
		specs[i] = experiment.RunSpec{
			Graph:       "connected:512:0.02",
			Algorithm:   "flood",
			Schedule:    "random:4",
			Delays:      "random",
			RandomPorts: true,
		}
	}
	for _, w := range []int{1, 4, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			runner := experiment.Runner{Workers: w, MasterSeed: 1}
			for i := 0; i < b.N; i++ {
				if _, err := runner.Run(specs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSetup measures per-topology Setup construction — port maps,
// CSR edge metadata, NodeInfo — including the million-node sparse case
// the compact node RNG makes routine (PR-10): setup work is O(n + m)
// with no per-node generator cost, since node randomness is seeded
// lazily in O(1) at wake time (BenchmarkReseedNode pins that half).
func BenchmarkSetup(b *testing.B) {
	for _, spec := range []string{"binary:16383", "gnp:5000:0.01", "binary:1000000"} {
		g, err := experiment.ParseGraph(spec, 1)
		if err != nil {
			b.Fatal(err)
		}
		model := sim.Model{Knowledge: sim.KT0, Bandwidth: sim.Congest}
		b.Run(spec, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.NewSetup(g, nil, model, int64(i), nil, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(g.N())/(b.Elapsed().Seconds()/float64(b.N)), "nodes/s")
		})
	}
}

// BenchmarkReseedNode measures the per-wake RNG cost the engine pays for
// every node: reseeding a recycled generator in place. With the compact
// PCG source this is O(1) — two splitmix64 evaluations — and
// allocation-free (the stdlib lagged-Fibonacci source it replaced ran a
// 607-word table fill here). BenchmarkNodeRand is the cold-start
// comparison: constructing the generator from scratch.
func BenchmarkReseedNode(b *testing.B) {
	r := sim.NodeRand(1, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.ReseedNode(r, 1, i)
	}
}

// BenchmarkNodeRand measures fresh per-node generator construction — the
// price of the first wake (subsequent wakes pay only BenchmarkReseedNode).
func BenchmarkNodeRand(b *testing.B) {
	b.ReportAllocs()
	var r *rand.Rand
	for i := 0; i < b.N; i++ {
		r = sim.NodeRand(1, i)
	}
	_ = r
}

// BenchmarkEngine measures raw simulator throughput (events per second)
// with the flooding algorithm, as an engine ablation.
func BenchmarkEngine(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		g := riseandshine.RandomConnected(n, 8.0/float64(n), int64(n))
		b.Run(fmt.Sprintf("async/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			events := 0
			for i := 0; i < b.N; i++ {
				res, err := riseandshine.Run(riseandshine.RunConfig{
					Graph:     g,
					Algorithm: "flood",
					AwakeSet:  []int{0},
					Delays:    riseandshine.RandomDelay{Seed: int64(i)},
				})
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
			}
			b.ReportMetric(float64(events)/float64(b.N), "events/run")
		})
	}
}
