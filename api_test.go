package riseandshine_test

import (
	"strings"
	"testing"

	"riseandshine"
)

func TestAlgorithmsRegistryComplete(t *testing.T) {
	names := riseandshine.Algorithms()
	want := []string{"cen", "counting-wake", "dfs-congest", "dfs-rank", "echo-flood", "fast-wakeup", "fip06", "flood", "leader-elect", "push-gossip", "spanner", "threshold"}
	if len(names) != len(want) {
		t.Fatalf("registry = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("registry = %v, want %v", names, want)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	_, err := riseandshine.Lookup("does-not-exist")
	if err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("err = %v", err)
	}
}

func TestLookupMetadata(t *testing.T) {
	info, err := riseandshine.Lookup("fast-wakeup")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Synchronous {
		t.Error("fast-wakeup should be synchronous")
	}
	if info.UsesAdvice {
		t.Error("fast-wakeup uses no advice")
	}
	cen, err := riseandshine.Lookup("cen")
	if err != nil {
		t.Fatal(err)
	}
	if !cen.UsesAdvice || cen.Synchronous {
		t.Error("cen is an asynchronous advising scheme")
	}
	if cen.Model.Knowledge != riseandshine.KT0 {
		t.Error("cen runs under KT0")
	}
}

func TestRunDefaultsWakeNodeZero(t *testing.T) {
	g := riseandshine.Path(10)
	res, err := riseandshine.Run(riseandshine.RunConfig{
		Graph:     g,
		Algorithm: "flood",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAwake {
		t.Error("not all awake")
	}
	if set := res.AwakeSet(); len(set) != 1 || set[0] != 0 {
		t.Errorf("awake set = %v", set)
	}
}

func TestRunEveryRegisteredAlgorithm(t *testing.T) {
	g := riseandshine.RandomConnected(80, 0.06, 3)
	for _, name := range riseandshine.Algorithms() {
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := riseandshine.Run(riseandshine.RunConfig{
				Graph:     g,
				Algorithm: name,
				Schedule:  riseandshine.RandomWake{Count: 3, Seed: 5},
				Delays:    riseandshine.RandomDelay{Seed: 7},
				Ports:     riseandshine.RandomPorts(g, 9),
				Seed:      1,
				Options:   riseandshine.Options{GossipRounds: 2000},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllAwake {
				t.Fatalf("only %d/%d awake", res.AwakeCount, res.N)
			}
			if res.Algorithm == "" {
				t.Error("result missing algorithm name")
			}
		})
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := riseandshine.Run(riseandshine.RunConfig{Algorithm: "flood"}); err == nil {
		t.Error("expected missing-graph error")
	}
	if _, err := riseandshine.Run(riseandshine.RunConfig{
		Graph:     riseandshine.Path(3),
		Algorithm: "bogus",
	}); err == nil {
		t.Error("expected unknown-algorithm error")
	}
}

func TestRunModelOverride(t *testing.T) {
	g := riseandshine.Path(5)
	// Flood defaults to KT0 CONGEST; override to KT1 LOCAL.
	res, err := riseandshine.Run(riseandshine.RunConfig{
		Graph:     g,
		Algorithm: "flood",
		Model:     riseandshine.Model{Knowledge: riseandshine.KT1, Bandwidth: riseandshine.Local},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAwake {
		t.Error("not all awake")
	}
}

func TestRunStrictCongestPropagates(t *testing.T) {
	// dfs-rank tokens are LOCAL-sized; forcing CONGEST must fail loudly.
	g := riseandshine.Cycle(30)
	_, err := riseandshine.Run(riseandshine.RunConfig{
		Graph:         g,
		Algorithm:     "dfs-rank",
		Model:         riseandshine.Model{Knowledge: riseandshine.KT1, Bandwidth: riseandshine.Congest},
		StrictCongest: true,
	})
	if err == nil {
		t.Error("expected CONGEST violation error")
	}
}

func TestGraphConstructorsExported(t *testing.T) {
	if riseandshine.Grid(3, 3).N() != 9 {
		t.Error("Grid broken")
	}
	if riseandshine.Hypercube(3).M() != 12 {
		t.Error("Hypercube broken")
	}
	if g := riseandshine.RandomTree(20, 1); g.M() != 19 || !g.Connected() {
		t.Error("RandomTree broken")
	}
	if g := riseandshine.RandomGNP(20, 0.5, 1); g.N() != 20 {
		t.Error("RandomGNP broken")
	}
	b := riseandshine.NewGraphBuilder(2)
	b.AddEdge(0, 1)
	if g, err := b.Build(); err != nil || g.M() != 1 {
		t.Error("GraphBuilder broken")
	}
}

func TestSpannerOptionsK(t *testing.T) {
	g := riseandshine.RandomConnected(100, 0.2, 2)
	for _, k := range []int{0, 2, 3} {
		res, err := riseandshine.Run(riseandshine.RunConfig{
			Graph:     g,
			Algorithm: "spanner",
			Options:   riseandshine.Options{K: k},
			Ports:     riseandshine.RandomPorts(g, 3),
		})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !res.AllAwake {
			t.Fatalf("k=%d: not all awake", k)
		}
	}
}
