// Package riseandshine is a simulation library for the adversarial wake-up
// problem in distributed networks, reproducing "Rise and Shine
// Efficiently! The Complexity of Adversarial Wake-up in Asynchronous
// Networks" (Robinson & Tan, PODC 2025).
//
// An adversary wakes an arbitrary subset of the nodes of a message-passing
// network at arbitrary times; the algorithm must wake everyone else
// quickly while sending few messages. The package exposes:
//
//   - graph generators and structural metrics (including the awake
//     distance ρ_awk);
//   - deterministic asynchronous and synchronous execution engines with
//     KT0/KT1 knowledge and CONGEST/LOCAL bandwidth models, oblivious
//     delay/wake adversaries, and exact message/time/advice accounting;
//   - every algorithm from the paper (flooding, ranked DFS, FastWakeUp,
//     and the four advising schemes) behind a registry keyed by name;
//   - the lower-bound graph families of Theorems 1 and 2 together with
//     matching upper-bound strategies, for reproducing the paper's
//     tradeoffs.
//
// Quick start:
//
//	g := riseandshine.Grid(16, 16)
//	res, err := riseandshine.Run(riseandshine.RunConfig{
//		Graph:     g,
//		Algorithm: "cen",
//		AwakeSet:  []int{0},
//		Seed:      1,
//	})
//
// See examples/ for complete programs.
package riseandshine

import (
	"io"
	"math/rand"
	"time"

	"riseandshine/internal/exectrace"
	"riseandshine/internal/graph"
	"riseandshine/internal/metrics"
	"riseandshine/internal/sim"
)

// Re-exported fundamental types. The implementation lives in internal
// packages; these aliases are the supported public surface.
type (
	// Graph is an immutable simple undirected network topology.
	Graph = graph.Graph
	// NodeID identifies a node to the distributed algorithms.
	NodeID = graph.NodeID
	// PortMap is a KT0 port numbering (bijections port ↔ neighbor).
	PortMap = graph.PortMap
	// Model selects the knowledge (KT0/KT1) and bandwidth
	// (CONGEST/LOCAL) assumptions.
	Model = sim.Model
	// Result carries the metrics of one execution.
	Result = sim.Result
	// Time is simulated time in units of the maximum message delay τ.
	Time = sim.Time
	// WakeScheduler decides which nodes the adversary wakes, and when.
	WakeScheduler = sim.WakeScheduler
	// Delayer assigns adversarial message delays in (0, 1].
	Delayer = sim.Delayer
	// GraphBuilder accumulates edges for a custom topology.
	GraphBuilder = graph.Builder
	// Observer receives an engine's event stream (wakes, deliveries,
	// sends, finish); install via RunConfig.Observer.
	Observer = sim.Observer
	// TraceObserver writes the CSV event trace.
	TraceObserver = sim.TraceObserver
	// DigestObserver folds deliveries into per-node transcript digests.
	DigestObserver = sim.DigestObserver
	// CountObserver tallies per-node wake/delivery/send histograms.
	CountObserver = sim.CountObserver
	// CausalObserver reconstructs the causal DAG of an execution and its
	// critical path (the longest causal chain ending at the last wake).
	CausalObserver = sim.CausalObserver
	// CausalReport is the critical path and causal-depth decomposition of
	// one execution.
	CausalReport = sim.CausalReport
	// CausalStep is one event on a reported critical path.
	CausalStep = sim.CausalStep
	// MetricsRegistry holds named counters, gauges, and histograms with
	// Prometheus text and deterministic JSON expositions.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time copy of a registry.
	MetricsSnapshot = metrics.Snapshot
	// MetricsObserver records an engine's event stream into a registry,
	// including a frontier time series; install via RunConfig.Metrics (or
	// stack it explicitly via RunConfig.Observer).
	MetricsObserver = metrics.Observer
	// FrontierPoint is one sample of the wake-up frontier.
	FrontierPoint = metrics.FrontierPoint
	// Engine is reusable asynchronous-engine scratch (event queue, machine
	// tables, per-node RNGs, FIFO clocks): its Run resets the buffers in
	// place instead of allocating fresh ones, with byte-identical results.
	// Pass one per sweep worker via RunConfig.Engine; the zero value is
	// ready to use. Not safe for concurrent use.
	Engine = sim.AsyncEngine
	// ShardedEngine is the conservative parallel engine: one run
	// partitioned across RunConfig.Shards contiguous node ranges, each on
	// its own goroutine, synchronized at delay-lookahead windows, with
	// Results byte-identical to the sequential Engine at every shard count.
	// Pass one per sweep worker via RunConfig.Sharded; the zero value is
	// ready to use. Not safe for concurrent use.
	ShardedEngine = sim.ShardedEngine
	// QueueKind selects the asynchronous engine's event-queue
	// implementation; any kind produces byte-identical Results.
	QueueKind = sim.QueueKind
	// MemReport is the per-subsystem scratch footprint of one asynchronous
	// run (see RunConfig.MemReport).
	MemReport = sim.MemReport
	// ExecRecorder is the engine flight recorder: bounded per-track span
	// rings around an injected monotonic clock, with a Chrome trace-event
	// export (WriteChromeTrace, Perfetto-loadable) and an aggregate stall
	// report (Stall). Install via RunConfig.ExecTrace.
	ExecRecorder = exectrace.Recorder
	// ExecStallReport aggregates one traced run: per-track
	// busy/barrier/merge totals, window count, imbalance ratio, and the
	// events-per-window histogram.
	ExecStallReport = exectrace.StallReport
	// ExecClock is the nanosecond monotonic clock an ExecRecorder reads;
	// see ExecTimeClock and ExecCounterClock.
	ExecClock = exectrace.Clock
)

// AsyncRound is the sentinel Context.Round returns in the asynchronous
// engines (sequential and sharded alike); synchronous rounds are ≥ 0, so
// Round() < 0 is the engine-transparent "am I asynchronous" branch.
const AsyncRound = sim.AsyncRound

// Event-queue implementations for RunConfig.Queue.
const (
	// QueueHeap is the default 4-ary min-heap: O(log k) per operation,
	// robust on every workload.
	QueueHeap = sim.QueueHeap
	// QueueCalendar is the calendar (bucket) queue exploiting the bounded
	// delay horizon τ: amortized O(1) per operation on large sparse runs.
	QueueCalendar = sim.QueueCalendar
)

// FormatBytes renders a byte count with a binary unit suffix (B, KiB, MiB,
// GiB) for memory-report output.
var FormatBytes = sim.FormatBytes

// Observer constructors and composition (see internal/sim for semantics).
var (
	NewTraceObserver  = sim.NewTraceObserver
	NewDigestObserver = sim.NewDigestObserver
	NewCountObserver  = sim.NewCountObserver
	NewCausalObserver = sim.NewCausalObserver
	StackObservers    = sim.StackObservers
	// CombineDigests folds per-node transcript digests into one value.
	CombineDigests = sim.CombineDigests
	// NewMetricsRegistry returns an empty metrics registry.
	NewMetricsRegistry = metrics.NewRegistry
	// NewMetricsObserver registers the sim_* metrics on a registry and
	// returns an observer for one run.
	NewMetricsObserver = metrics.NewObserver
)

// NewExecRecorder returns a flight recorder around the injected clock
// (nil selects the deterministic ExecCounterClock).
var NewExecRecorder = exectrace.New

// ExecCounterClock returns a deterministic ExecClock — each reading is
// the next integer — for reproducible traces in tests.
var ExecCounterClock = exectrace.CounterClock

// ExecTimeClock returns a monotonic wall clock started now, for real
// profiling. The wall-time read lives here in the façade, outside the
// deterministic packages, on purpose: exectrace itself never touches the
// clock — it only reads whatever Clock was injected.
func ExecTimeClock() ExecClock {
	start := time.Now()
	return func() int64 { return int64(time.Since(start)) }
}

// NewGraphBuilder returns a builder for a custom graph on n nodes.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// ReadGraph parses a graph in the edge-list text format (see
// WriteGraph): "n <count>" header, "u v" edge lines, optional
// "id <node> <id>" lines, '#' comments.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteGraph serializes g in the edge-list text format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// WriteGraphDOT renders g in Graphviz DOT format with an optional
// highlighted node subset (e.g. the awake set).
func WriteGraphDOT(w io.Writer, g *Graph, highlight []int) error {
	return graph.WriteDOT(w, g, highlight)
}

// Knowledge and bandwidth constants.
const (
	KT0     = sim.KT0
	KT1     = sim.KT1
	Congest = sim.Congest
	Local   = sim.Local
)

// Graph generators (see internal/graph for details).
var (
	Path              = graph.Path
	Cycle             = graph.Cycle
	Star              = graph.Star
	Complete          = graph.Complete
	CompleteBipartite = graph.CompleteBipartite
	Grid              = graph.Grid
	Torus             = graph.Torus
	Hypercube         = graph.Hypercube
	Lollipop          = graph.Lollipop
	Barbell           = graph.Barbell
	BinaryTree        = graph.BinaryTree
	Caterpillar       = graph.Caterpillar
	Wheel             = graph.Wheel
	KAryTree          = graph.KAryTree
	DeBruijn          = graph.DeBruijn
)

// RandomRegular returns a simple d-regular random graph (n·d even, d < n).
func RandomRegular(n, d int, seed int64) *Graph {
	return graph.RandomRegular(n, d, rand.New(rand.NewSource(seed)))
}

// PreferentialAttachment returns a Barabási–Albert graph with m edges per
// arriving node — a connected, hub-dominated workload.
func PreferentialAttachment(n, m int, seed int64) *Graph {
	return graph.PreferentialAttachment(n, m, rand.New(rand.NewSource(seed)))
}

// RandomTree returns a uniformly random labeled tree on n nodes.
func RandomTree(n int, seed int64) *Graph {
	return graph.RandomTree(n, rand.New(rand.NewSource(seed)))
}

// RandomGNP returns an Erdős–Rényi G(n, p) graph (possibly disconnected).
func RandomGNP(n int, p float64, seed int64) *Graph {
	return graph.RandomGNP(n, p, rand.New(rand.NewSource(seed)))
}

// RandomConnected returns a connected random graph: a uniform spanning
// tree plus independent extra edges with probability p.
func RandomConnected(n int, p float64, seed int64) *Graph {
	return graph.RandomConnected(n, p, rand.New(rand.NewSource(seed)))
}

// RandomPorts draws an independent uniformly random port mapping for
// every node — the KT0 adversary's port assignment.
func RandomPorts(g *Graph, seed int64) *PortMap {
	return graph.RandomPorts(g, rand.New(rand.NewSource(seed)))
}

// Adversary wake schedules.
var (
	// WakeSingle wakes one node at time zero.
	WakeSingle = sim.WakeSingle
)

// WakeSet wakes a fixed set of nodes at a common time.
type WakeSet = sim.WakeSet

// WakeAll wakes every node at time zero.
type WakeAll = sim.WakeAll

// RandomWake wakes a random node subset at random times in a window.
type RandomWake = sim.RandomWake

// StaggeredWake wakes disjoint batches at increasing times (the
// adversarial pattern analyzed in Theorem 3).
type StaggeredWake = sim.StaggeredWake

// DominatingWake wakes a greedy dominating set (ρ_awk ≤ 1).
type DominatingWake = sim.DominatingWake

// Message delay strategies.
type (
	// UnitDelay delivers after exactly one time unit.
	UnitDelay = sim.UnitDelay
	// RandomDelay assigns seeded pseudo-random delays in (Min, 1].
	RandomDelay = sim.RandomDelay
)
