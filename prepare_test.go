package riseandshine_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"riseandshine"
)

func marshalResult(t *testing.T, res *riseandshine.Result) []byte {
	t.Helper()
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

// TestPrepareRunEquivalence checks the façade's reuse contract over the
// whole registry — advice schemes, synchronous algorithms, asynchronous
// algorithms: one Prepare reused across a seed sweep with a shared engine
// must reproduce the package-level Run byte for byte, digests included.
func TestPrepareRunEquivalence(t *testing.T) {
	g := riseandshine.RandomConnected(60, 0.08, 3)
	ports := riseandshine.RandomPorts(g, 9)
	for _, name := range riseandshine.Algorithms() {
		name := name
		t.Run(name, func(t *testing.T) {
			base := riseandshine.RunConfig{
				Graph:     g,
				Algorithm: name,
				Ports:     ports,
				Options:   riseandshine.Options{GossipRounds: 2000},
			}
			p, err := riseandshine.Prepare(base)
			if err != nil {
				t.Fatalf("Prepare: %v", err)
			}
			eng := &riseandshine.Engine{}
			for seed := int64(1); seed <= 3; seed++ {
				cfg := base
				cfg.Schedule = riseandshine.RandomWake{Count: 3, Seed: 5 * seed}
				cfg.Delays = riseandshine.RandomDelay{Seed: 7}
				cfg.Seed = seed
				cfg.RecordDigests = true
				direct, err := riseandshine.Run(cfg)
				if err != nil {
					t.Fatalf("seed %d direct: %v", seed, err)
				}
				cfg.Engine = eng
				prepared, err := p.Run(cfg)
				if err != nil {
					t.Fatalf("seed %d prepared: %v", seed, err)
				}
				a, b := marshalResult(t, direct), marshalResult(t, prepared)
				if !bytes.Equal(a, b) {
					t.Fatalf("seed %d: prepared run diverged from direct run\ndirect:   %s\nprepared: %s", seed, a, b)
				}
			}
		})
	}
}

// TestPreparedRunValidation: a Prepared refuses configs that identify a
// different experiment than the one it caches.
func TestPreparedRunValidation(t *testing.T) {
	g := riseandshine.Path(8)
	p, err := riseandshine.Prepare(riseandshine.RunConfig{Graph: g, Algorithm: "flood"})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		cfg  riseandshine.RunConfig
	}{
		{"graph", riseandshine.RunConfig{Graph: riseandshine.Path(8), Algorithm: "flood"}},
		{"algorithm", riseandshine.RunConfig{Graph: g, Algorithm: "cen"}},
		{"options", riseandshine.RunConfig{Graph: g, Algorithm: "flood", Options: riseandshine.Options{K: 3}}},
		{"ports", riseandshine.RunConfig{Graph: g, Algorithm: "flood", Ports: riseandshine.RandomPorts(g, 1)}},
		{"model", riseandshine.RunConfig{Graph: g, Algorithm: "flood",
			Model: riseandshine.Model{Knowledge: riseandshine.KT1, Bandwidth: riseandshine.Local}}},
	} {
		if _, err := p.Run(tc.cfg); err == nil {
			t.Errorf("%s mismatch: expected an error", tc.name)
		}
	}
	// The matching config still runs.
	if _, err := p.Run(riseandshine.RunConfig{Graph: g, Algorithm: "flood"}); err != nil {
		t.Errorf("matching config failed: %v", err)
	}
}
