package riseandshine

import (
	"fmt"
	"sort"

	"riseandshine/internal/advice"
	"riseandshine/internal/core"
	"riseandshine/internal/sim"
)

// Options carries per-algorithm parameters; zero values select the
// defaults used in the paper.
type Options struct {
	// Root is the BFS root for the tree-based advising schemes.
	Root int
	// K is the spanner stretch parameter of the Theorem 6 scheme; 0
	// selects the Corollary 2 instantiation k = ⌈log2 n⌉ at run time.
	K int
	// RootProb overrides FastWakeUp's sampling probability.
	RootProb float64
	// GossipRounds overrides the push-gossip round budget.
	GossipRounds int
	// RankBits overrides the DFS rank width.
	RankBits int
}

// AlgorithmInfo describes one registered algorithm.
type AlgorithmInfo struct {
	// Name is the registry key.
	Name string
	// Paper cites the theorem or source the algorithm implements.
	Paper string
	// Description is a one-line summary.
	Description string
	// Model is the weakest model the algorithm is designed for.
	Model Model
	// Synchronous reports whether the algorithm requires lock-step rounds.
	Synchronous bool
	// UsesAdvice reports whether an oracle must run before execution.
	UsesAdvice bool

	newOracle func(n int, opt Options) advice.Oracle
	newAsync  func(opt Options) sim.Algorithm
	newSync   func(opt Options) sim.SyncAlgorithm
}

func registry() map[string]AlgorithmInfo {
	infos := []AlgorithmInfo{
		{
			Name:        "flood",
			Paper:       "folklore baseline (§1.2)",
			Description: "broadcast on wake: optimal ρ_awk time, Θ(m) messages",
			Model:       Model{Knowledge: sim.KT0, Bandwidth: sim.Congest},
			newAsync:    func(Options) sim.Algorithm { return core.Flood{} },
		},
		{
			Name:        "dfs-rank",
			Paper:       "Theorem 3",
			Description: "ranked DFS traversals: O(n log n) time and messages w.h.p.",
			Model:       Model{Knowledge: sim.KT1, Bandwidth: sim.Local},
			newAsync:    func(o Options) sim.Algorithm { return core.DFSRank{RankBits: o.RankBits} },
		},
		{
			Name:        "fast-wakeup",
			Paper:       "Theorem 4",
			Description: "sampled roots + depth-3 BFS trees: O(ρ_awk) rounds, O(n^{3/2}√log n) messages w.h.p.",
			Model:       Model{Knowledge: sim.KT1, Bandwidth: sim.Local},
			Synchronous: true,
			newSync:     func(o Options) sim.SyncAlgorithm { return core.FastWakeUp{RootProb: o.RootProb} },
		},
		{
			Name:        "fip06",
			Paper:       "Corollary 1 (after Fraigniaud–Ilcinkas–Pelc)",
			Description: "BFS-tree port advice: O(D) time, O(n) messages, max advice O(n) bits",
			Model:       Model{Knowledge: sim.KT0, Bandwidth: sim.Congest},
			UsesAdvice:  true,
			newOracle:   func(_ int, o Options) advice.Oracle { return core.FIP06Oracle{Root: o.Root} },
			newAsync:    func(Options) sim.Algorithm { return core.FIP06{} },
		},
		{
			Name:        "threshold",
			Paper:       "Theorem 5(A)",
			Description: "√n degree threshold: O(D) time, O(n^{3/2}) messages, max advice O(√n log n) bits",
			Model:       Model{Knowledge: sim.KT0, Bandwidth: sim.Congest},
			UsesAdvice:  true,
			newOracle:   func(_ int, o Options) advice.Oracle { return core.ThresholdOracle{Root: o.Root} },
			newAsync:    func(Options) sim.Algorithm { return core.Threshold{} },
		},
		{
			Name:        "cen",
			Paper:       "Theorem 5(B)",
			Description: "child-encoding scheme: O(D log n) time, O(n) messages, max advice O(log n) bits",
			Model:       Model{Knowledge: sim.KT0, Bandwidth: sim.Congest},
			UsesAdvice:  true,
			newOracle:   func(_ int, o Options) advice.Oracle { return core.CENOracle{Root: o.Root} },
			newAsync:    func(Options) sim.Algorithm { return core.CEN{} },
		},
		{
			Name:        "spanner",
			Paper:       "Theorem 6 / Corollary 2",
			Description: "child-encoded greedy spanner: O(k·ρ_awk·log n) time, Õ(n^{1+1/k}) messages",
			Model:       Model{Knowledge: sim.KT0, Bandwidth: sim.Congest},
			UsesAdvice:  true,
			newOracle: func(n int, o Options) advice.Oracle {
				k := o.K
				if k <= 0 {
					k = core.Corollary2K(n)
				}
				return core.SpannerOracle{K: k}
			},
			newAsync: func(Options) sim.Algorithm { return core.SpannerScheme{} },
		},
		{
			Name:        "dfs-congest",
			Paper:       "Theorem 3 comparator (CONGEST variant)",
			Description: "priority DFS with O(log n)-bit tokens: Θ(m) messages — what LOCAL saves Theorem 3",
			Model:       Model{Knowledge: sim.KT0, Bandwidth: sim.Congest},
			newAsync:    func(Options) sim.Algorithm { return core.CongestDFS{} },
		},
		{
			Name:        "echo-flood",
			Paper:       "flooding + PIF feedback (library extension)",
			Description: "wake-up with termination detection: initiators learn when everyone is awake",
			Model:       Model{Knowledge: sim.KT0, Bandwidth: sim.Congest},
			newAsync:    func(Options) sim.Algorithm { return core.EchoFlood{} },
		},
		{
			Name:        "counting-wake",
			Paper:       "aggregating echo wave (library extension)",
			Description: "wake-up + size discovery: each initiator learns n via subtree counting",
			Model:       Model{Knowledge: sim.KT0, Bandwidth: sim.Congest},
			newAsync:    func(Options) sim.Algorithm { return core.CountingWake{} },
		},
		{
			Name:        "leader-elect",
			Paper:       "application of Theorem 3 (§1.3)",
			Description: "ranked-DFS leader election under adversarial wake-up: Õ(n) time and messages",
			Model:       Model{Knowledge: sim.KT1, Bandwidth: sim.Local},
			newAsync:    func(o Options) sim.Algorithm { return core.LeaderElect{RankBits: o.RankBits} },
		},
		{
			Name:        "push-gossip",
			Paper:       "§1.3 comparator",
			Description: "push-only gossip: fails on low-conductance graphs (footnote 3)",
			Model:       Model{Knowledge: sim.KT1, Bandwidth: sim.Congest},
			Synchronous: true,
			newSync:     func(o Options) sim.SyncAlgorithm { return core.PushGossip{Rounds: o.GossipRounds} },
		},
	}
	m := make(map[string]AlgorithmInfo, len(infos))
	for _, info := range infos {
		m[info.Name] = info
	}
	return m
}

// Algorithms lists the registered algorithm names in sorted order.
func Algorithms() []string {
	reg := registry()
	names := make([]string, 0, len(reg))
	for name := range reg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the registry entry for an algorithm name.
func Lookup(name string) (AlgorithmInfo, error) {
	info, ok := registry()[name]
	if !ok {
		return AlgorithmInfo{}, fmt.Errorf("riseandshine: unknown algorithm %q (have %v)", name, Algorithms())
	}
	return info, nil
}
