package riseandshine

import (
	"fmt"
	"io"

	"riseandshine/internal/graph"
	"riseandshine/internal/metrics"
	"riseandshine/internal/sim"
)

// RunConfig describes one execution through the façade.
type RunConfig struct {
	// Graph is the network (required, connected).
	Graph *Graph
	// Algorithm is a registry name; see Algorithms().
	Algorithm string
	// Options carries per-algorithm parameters.
	Options Options

	// AwakeSet lists the node indices the adversary wakes at time zero.
	// Leave nil to use Schedule instead; if both are nil, node 0 wakes.
	AwakeSet []int
	// Schedule overrides AwakeSet with an arbitrary adversarial schedule.
	Schedule WakeScheduler
	// Delays selects the delay adversary for asynchronous runs; nil means
	// unit delays.
	Delays Delayer

	// Ports overrides the KT0 port mapping; nil selects identity ports.
	// Use RandomPorts for the adversarial assignment.
	Ports *PortMap
	// Seed drives all node randomness.
	Seed int64
	// Model overrides the algorithm's default model when non-zero. The
	// override may only strengthen knowledge or relax bandwidth.
	Model Model
	// StrictCongest fails the run if a message exceeds the CONGEST limit.
	StrictCongest bool
	// Trace, when non-nil, receives a CSV event trace from either engine.
	// Shorthand for stacking NewTraceObserver(w) onto Observer.
	Trace io.Writer
	// RecordDigests publishes per-node FNV transcript digests into
	// Result.TranscriptDigests. Shorthand for stacking NewDigestObserver
	// onto Observer.
	RecordDigests bool
	// Metrics, when non-nil, records the run into the registry. Shorthand
	// for stacking NewMetricsObserver(Metrics, n) onto Observer; use the
	// observer directly when the frontier time series is needed.
	Metrics *MetricsRegistry
	// Observer, when non-nil, receives the engine's event stream; stack
	// several with StackObservers. Runs without any observer keep the
	// engines' allocation-free hot path.
	Observer Observer
}

// Run executes the named algorithm, running its oracle first if the scheme
// uses advice, and selecting the synchronous or asynchronous engine as the
// algorithm requires.
func Run(cfg RunConfig) (*Result, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("riseandshine: RunConfig.Graph is required")
	}
	info, err := Lookup(cfg.Algorithm)
	if err != nil {
		return nil, err
	}
	schedule := cfg.Schedule
	if schedule == nil {
		awake := cfg.AwakeSet
		if len(awake) == 0 {
			awake = []int{0}
		}
		schedule = WakeSet{Nodes: awake}
	}
	model := info.Model
	if cfg.Model != (Model{}) {
		model = cfg.Model
	}

	ports := cfg.Ports
	if ports == nil {
		ports = graph.IdentityPorts(cfg.Graph)
	}
	var adviceBytes [][]byte
	var adviceBits []int
	if info.UsesAdvice {
		oracle := info.newOracle(cfg.Graph.N(), cfg.Options)
		adviceBytes, adviceBits, err = oracle.Advise(cfg.Graph, ports)
		if err != nil {
			return nil, fmt.Errorf("riseandshine: oracle %s: %w", oracle.Name(), err)
		}
	}

	observer := cfg.Observer
	if cfg.Metrics != nil {
		observer = sim.StackObservers(metrics.NewObserver(cfg.Metrics, cfg.Graph.N()), observer)
	}

	if info.Synchronous {
		// The synchronous engine takes only the explicit observer slot, so
		// the façade desugars Trace/RecordDigests into the stack here.
		var trace, digests sim.Observer
		if cfg.Trace != nil {
			trace = sim.NewTraceObserver(cfg.Trace)
		}
		if cfg.RecordDigests {
			digests = sim.NewDigestObserver(false)
		}
		return sim.RunSync(sim.SyncConfig{
			Graph:         cfg.Graph,
			Ports:         ports,
			Model:         model,
			Schedule:      schedule,
			Seed:          cfg.Seed,
			Advice:        adviceBytes,
			AdviceBits:    adviceBits,
			StrictCongest: cfg.StrictCongest,
			Observer:      sim.StackObservers(trace, digests, observer),
		}, info.newSync(cfg.Options))
	}
	return sim.RunAsync(sim.Config{
		Graph: cfg.Graph,
		Ports: ports,
		Model: model,
		Adversary: sim.Adversary{
			Schedule: schedule,
			Delays:   cfg.Delays,
		},
		Seed:          cfg.Seed,
		Advice:        adviceBytes,
		AdviceBits:    adviceBits,
		StrictCongest: cfg.StrictCongest,
		Trace:         cfg.Trace,
		RecordDigests: cfg.RecordDigests,
		Observer:      observer,
	}, info.newAsync(cfg.Options))
}
