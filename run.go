package riseandshine

import (
	"fmt"
	"io"

	"riseandshine/internal/graph"
	"riseandshine/internal/metrics"
	"riseandshine/internal/sim"
)

// RunConfig describes one execution through the façade.
type RunConfig struct {
	// Graph is the network (required, connected).
	Graph *Graph
	// Algorithm is a registry name; see Algorithms().
	Algorithm string
	// Options carries per-algorithm parameters.
	Options Options

	// AwakeSet lists the node indices the adversary wakes at time zero.
	// Leave nil to use Schedule instead; if both are nil, node 0 wakes.
	AwakeSet []int
	// Schedule overrides AwakeSet with an arbitrary adversarial schedule.
	Schedule WakeScheduler
	// Delays selects the delay adversary for asynchronous runs; nil means
	// unit delays.
	Delays Delayer

	// Ports overrides the KT0 port mapping; nil selects identity ports.
	// Use RandomPorts for the adversarial assignment.
	Ports *PortMap
	// Seed drives all node randomness.
	Seed int64
	// Model overrides the algorithm's default model when non-zero. The
	// override may only strengthen knowledge or relax bandwidth.
	Model Model
	// StrictCongest fails the run if a message exceeds the CONGEST limit.
	StrictCongest bool
	// Trace, when non-nil, receives a CSV event trace from either engine.
	// Shorthand for stacking NewTraceObserver(w) onto Observer.
	Trace io.Writer
	// RecordDigests publishes per-node FNV transcript digests into
	// Result.TranscriptDigests. Shorthand for stacking NewDigestObserver
	// onto Observer.
	RecordDigests bool
	// Metrics, when non-nil, records the run into the registry. Shorthand
	// for stacking NewMetricsObserver(Metrics, n) onto Observer; use the
	// observer directly when the frontier time series is needed.
	Metrics *MetricsRegistry
	// Observer, when non-nil, receives the engine's event stream; stack
	// several with StackObservers. Runs without any observer keep the
	// engines' allocation-free hot path.
	Observer Observer
	// Engine, when non-nil, supplies reusable asynchronous-engine scratch:
	// the run resets the engine's buffers in place instead of allocating
	// fresh ones. An Engine is not safe for concurrent use — give each
	// sweep worker its own. Synchronous algorithms ignore it.
	Engine *Engine
	// Shards, when > 1, runs the asynchronous engine sharded: the graph is
	// partitioned into that many contiguous node ranges, each driven by its
	// own event loop on its own goroutine, synchronized at windows of the
	// delay adversary's lookahead. Results are byte-identical to the
	// sequential engine at every shard count; a Delayer without a positive
	// Lookahead falls back to the sequential path. Synchronous algorithms
	// ignore it.
	Shards int
	// Sharded, when non-nil, supplies reusable sharded-engine scratch for
	// Shards > 1 runs (the analogue of Engine). Not safe for concurrent
	// use — give each sweep worker its own.
	Sharded *ShardedEngine
	// Queue selects the asynchronous engine's event-queue implementation.
	// The zero value is the 4-ary heap; QueueCalendar switches to the
	// calendar queue, which pops in byte-identical order. Synchronous
	// algorithms ignore it.
	Queue QueueKind
	// MemReport populates Result.Mem with the run's per-subsystem scratch
	// footprint (asynchronous engine only). Diagnostic: leave off when
	// comparing Results byte-for-byte across queue kinds or engine reuse.
	MemReport bool
	// ExecTrace, when non-nil, records the run's execution timeline into
	// the flight recorder: setup/run/finish phases on every engine, plus
	// per-window busy/barrier/merge/replay spans per shard on sharded
	// runs. Read it back with ExecRecorder.Stall (aggregate stall report)
	// or ExecRecorder.WriteChromeTrace (Perfetto-loadable JSON) after Run
	// returns. The recorder's timestamps come from its injected clock and
	// never enter the Result, so traced runs stay byte-identical to
	// untraced ones.
	ExecTrace *ExecRecorder
}

// Prepared caches the seed-independent work of one configuration — the
// resolved algorithm, its oracle's advice, and the validated harness Setup
// with its CSR edge metadata — so a sweep can replay the configuration
// across a whole seed matrix paying the setup cost once. Per-run inputs
// (seed, schedule, delays, observers) still come from the RunConfig given
// to Run.
//
// A Prepared is immutable after Prepare and safe for concurrent Run calls,
// as long as each concurrent caller passes its own RunConfig.Engine (or
// none). The underlying graph and port map must not be mutated (e.g. via
// SwapPorts) while the Prepared is in use.
type Prepared struct {
	graph      *Graph
	algorithm  string
	options    Options
	info       AlgorithmInfo
	model      Model
	ports      *PortMap
	advice     [][]byte
	adviceBits []int
	setup      *sim.Setup
}

// Prepare resolves and validates the seed-independent part of cfg: the
// algorithm lookup, the model override, the port mapping, the oracle run
// (advice is a deterministic function of graph and ports), and the harness
// Setup. The per-run fields of cfg (seed, schedule, delays, observers) are
// ignored here and supplied to Prepared.Run instead.
func Prepare(cfg RunConfig) (*Prepared, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("riseandshine: RunConfig.Graph is required")
	}
	info, err := Lookup(cfg.Algorithm)
	if err != nil {
		return nil, err
	}
	model := info.Model
	if cfg.Model != (Model{}) {
		model = cfg.Model
	}
	ports := cfg.Ports
	if ports == nil {
		ports = graph.IdentityPorts(cfg.Graph)
	}
	var adviceBytes [][]byte
	var adviceBits []int
	if info.UsesAdvice {
		oracle := info.newOracle(cfg.Graph.N(), cfg.Options)
		adviceBytes, adviceBits, err = oracle.Advise(cfg.Graph, ports)
		if err != nil {
			return nil, fmt.Errorf("riseandshine: oracle %s: %w", oracle.Name(), err)
		}
	}
	setup, err := sim.NewSetup(cfg.Graph, ports, model, cfg.Seed, adviceBytes, adviceBits)
	if err != nil {
		return nil, err
	}
	return &Prepared{
		graph:      cfg.Graph,
		algorithm:  cfg.Algorithm,
		options:    cfg.Options,
		info:       info,
		model:      model,
		ports:      ports,
		advice:     adviceBytes,
		adviceBits: adviceBits,
		setup:      setup,
	}, nil
}

// Run executes the prepared configuration once. The identifying fields of
// cfg (Graph, Algorithm, Options, Ports, Model) must match the Prepare
// call; everything per-run — Seed, AwakeSet/Schedule, Delays, observers,
// Engine — is taken from cfg as in the package-level Run.
func (p *Prepared) Run(cfg RunConfig) (*Result, error) {
	if cfg.Graph != p.graph {
		return nil, fmt.Errorf("riseandshine: Prepared was built for a different graph")
	}
	if cfg.Algorithm != p.algorithm {
		return nil, fmt.Errorf("riseandshine: Prepared was built for algorithm %q, config wants %q", p.algorithm, cfg.Algorithm)
	}
	if cfg.Options != p.options {
		return nil, fmt.Errorf("riseandshine: Prepared was built with different Options")
	}
	if cfg.Ports != nil && cfg.Ports != p.ports {
		return nil, fmt.Errorf("riseandshine: Prepared was built for a different port map")
	}
	if cfg.Model != (Model{}) && cfg.Model != p.model {
		return nil, fmt.Errorf("riseandshine: Prepared was built for model %v, config wants %v", p.model, cfg.Model)
	}

	schedule := cfg.Schedule
	if schedule == nil {
		awake := cfg.AwakeSet
		if len(awake) == 0 {
			awake = []int{0}
		}
		schedule = WakeSet{Nodes: awake}
	}

	observer := cfg.Observer
	if cfg.Metrics != nil {
		observer = sim.StackObservers(metrics.NewObserver(cfg.Metrics, p.graph.N()), observer)
	}

	// The explicit nil check keeps a nil *ExecRecorder from becoming a
	// non-nil ExecTracer interface value in the engine configs.
	var tracer sim.ExecTracer
	if cfg.ExecTrace != nil {
		tracer = cfg.ExecTrace
	}

	if p.info.Synchronous {
		// The synchronous engine takes only the explicit observer slot, so
		// the façade desugars Trace/RecordDigests into the stack here.
		var trace, digests sim.Observer
		if cfg.Trace != nil {
			trace = sim.NewTraceObserver(cfg.Trace)
		}
		if cfg.RecordDigests {
			digests = sim.NewDigestObserver(false)
		}
		return sim.RunSync(sim.SyncConfig{
			Graph:         p.graph,
			Ports:         p.ports,
			Model:         p.model,
			Schedule:      schedule,
			Seed:          cfg.Seed,
			Advice:        p.advice,
			AdviceBits:    p.adviceBits,
			Setup:         p.setup,
			StrictCongest: cfg.StrictCongest,
			Observer:      sim.StackObservers(trace, digests, observer),
			Tracer:        tracer,
		}, p.info.newSync(cfg.Options))
	}
	simCfg := sim.Config{
		Graph: p.graph,
		Ports: p.ports,
		Model: p.model,
		Adversary: sim.Adversary{
			Schedule: schedule,
			Delays:   cfg.Delays,
		},
		Seed:          cfg.Seed,
		Advice:        p.advice,
		AdviceBits:    p.adviceBits,
		Setup:         p.setup,
		StrictCongest: cfg.StrictCongest,
		Trace:         cfg.Trace,
		RecordDigests: cfg.RecordDigests,
		Observer:      observer,
		Queue:         cfg.Queue,
		MemReport:     cfg.MemReport,
		Shards:        cfg.Shards,
		Tracer:        tracer,
	}
	alg := p.info.newAsync(cfg.Options)
	if cfg.Shards > 1 {
		if cfg.Sharded != nil {
			return cfg.Sharded.Run(simCfg, alg)
		}
		return sim.RunSharded(simCfg, alg)
	}
	if cfg.Engine != nil {
		return cfg.Engine.Run(simCfg, alg)
	}
	return sim.RunAsync(simCfg, alg)
}

// Run executes the named algorithm, running its oracle first if the scheme
// uses advice, and selecting the synchronous or asynchronous engine as the
// algorithm requires. Sweeps that replay one configuration across many
// seeds should Prepare once and call Prepared.Run per seed instead.
func Run(cfg RunConfig) (*Result, error) {
	p, err := Prepare(cfg)
	if err != nil {
		return nil, err
	}
	return p.Run(cfg)
}
