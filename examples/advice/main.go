// Advice-length tradeoffs: how many oracle bits buy how many messages?
//
// This example reproduces the information-sensitivity story of §4 on a
// single network: the four advising schemes occupy different points on the
// (advice, messages, time) tradeoff surface, and Theorem 1's lower bound
// says the surface cannot be beaten by polynomial factors. The workload is
// a random sparse graph with a high-degree hub (a caterpillar spine fused
// with random edges) so that per-node advice differences are visible.
//
//	go run ./examples/advice
package main

import (
	"fmt"
	"log"
	"math"

	"riseandshine"
)

func buildNetwork() *riseandshine.Graph {
	// A 600-node random connected graph with a 120-leaf hub attached:
	// tree-based schemes must encode the hub's children somehow, which is
	// exactly what separates Corollary 1, Theorem 5A, and Theorem 5B.
	base := riseandshine.RandomConnected(600, 0.004, 17)
	n := base.N()
	b := riseandshine.NewGraphBuilder(n + 120)
	for _, e := range base.Edges() {
		b.AddEdge(e[0], e[1])
	}
	for l := 0; l < 120; l++ {
		b.AddEdge(0, n+l) // leaves hanging off node 0
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return g
}

func main() {
	g := buildNetwork()
	diam, err := g.Diameter()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: n=%d m=%d D=%d (sparse graph + 120-leaf hub at node 0)\n\n", g.N(), g.M(), diam)

	fmt.Printf("%-10s | %10s %10s | %8s %9s | %s\n",
		"scheme", "advice-max", "advice-avg", "messages", "time(τ)", "paper bound (max advice)")
	bounds := map[string]string{
		"flood":     "— (no advice, Θ(m) msgs)",
		"fip06":     "O(n) bits          [Cor 1]",
		"threshold": "O(√n·log n) bits   [Thm 5A]",
		"cen":       "O(log n) bits      [Thm 5B]",
		"spanner":   "O(log² n) bits     [Cor 2]",
	}
	for _, alg := range []string{"flood", "fip06", "threshold", "cen", "spanner"} {
		res, err := riseandshine.Run(riseandshine.RunConfig{
			Graph:     g,
			Algorithm: alg,
			AwakeSet:  []int{g.N() - 1},
			Delays:    riseandshine.RandomDelay{Seed: 23},
			Ports:     riseandshine.RandomPorts(g, 29),
			Seed:      4,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.AllAwake {
			log.Fatalf("%s: not all nodes woke", alg)
		}
		fmt.Printf("%-10s | %9db %9.1fb | %8d %9.2f | %s\n",
			alg, res.AdviceMaxBits, res.AdviceAvgBits(), res.Messages, float64(res.Span), bounds[alg])
	}

	n := float64(g.N())
	fmt.Printf("\nfor scale: log2 n = %.1f, √n·log2 n = %.0f, n = %.0f\n",
		math.Log2(n), math.Sqrt(n)*math.Log2(n), n)
	fmt.Println("\nTheorem 1 (see cmd/lowerbound -thm 1): with only β bits of advice per node,")
	fmt.Println("Ω(n²/2^β) messages are unavoidable — O(log n)-bit schemes like cen are within")
	fmt.Println("a log factor of the least advice that permits O(n·polylog n) messages.")
}
