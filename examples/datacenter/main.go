// Datacenter wake-up: the scenario motivating the paper's introduction.
// Idle servers sleep to save power (Wake-on-LAN); a management node must
// wake the whole fleet with few packets.
//
// The topology is a two-tier leaf–spine fabric: spine switches fully
// connected to top-of-rack (ToR) switches, each ToR connected to its
// rack's servers. The network operator knows the full topology ahead of
// time, which is exactly the advising-scheme setting: an oracle
// precomputes a few bits per NIC, and the wake-up then runs with O(n)
// "magic packets" instead of flooding every link.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"

	"riseandshine"
)

const (
	spines         = 4
	racks          = 16
	serversPerRack = 24
)

// buildFabric returns the leaf–spine topology plus the index of the
// management server (a server in rack 0).
func buildFabric() (*riseandshine.Graph, int) {
	n := spines + racks + racks*serversPerRack
	b := riseandshine.NewGraphBuilder(n)
	// Indices: spines [0,spines), ToRs [spines, spines+racks), servers after.
	for s := 0; s < spines; s++ {
		for t := 0; t < racks; t++ {
			b.AddEdge(s, spines+t)
		}
	}
	server := func(rack, i int) int { return spines + racks + rack*serversPerRack + i }
	for t := 0; t < racks; t++ {
		for i := 0; i < serversPerRack; i++ {
			b.AddEdge(spines+t, server(t, i))
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return g, server(0, 0)
}

func main() {
	g, mgmt := buildFabric()
	diam, err := g.Diameter()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("leaf–spine fabric: %d spines, %d racks × %d servers = %d nodes, %d links, diameter %d\n",
		spines, racks, serversPerRack, g.N(), g.M(), diam)
	fmt.Printf("management server (index %d) wakes the fleet\n\n", mgmt)

	fmt.Printf("%-10s %9s %9s %12s %12s %10s\n",
		"scheme", "packets", "time(τ)", "advice-max", "advice-avg", "all-awake")
	for _, alg := range []string{"flood", "fip06", "threshold", "cen", "spanner"} {
		res, err := riseandshine.Run(riseandshine.RunConfig{
			Graph:     g,
			Algorithm: alg,
			AwakeSet:  []int{mgmt},
			Delays:    riseandshine.RandomDelay{Seed: 3},
			Ports:     riseandshine.RandomPorts(g, 5),
			Seed:      9,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %9d %9.2f %9db %11.1fb %10v\n",
			alg, res.Messages, float64(res.Span), res.AdviceMaxBits, res.AdviceAvgBits(), res.AllAwake)
	}

	fmt.Println("\nflooding exercises every fabric link; the advising schemes wake the fleet")
	fmt.Println("with ≈2 packets per node. The child-encoding scheme (cen) additionally caps")
	fmt.Println("the per-NIC configuration at O(log n) bits — a ToR with hundreds of servers")
	fmt.Println("does not need to store its whole child list (Theorem 5B).")
}
