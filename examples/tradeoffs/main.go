// Tradeoff figures: render the Table 1 landscape as terminal plots.
//
// The example sweeps the network size for four representative algorithms
// and draws log–log ASCII figures of their message and time costs,
// visualizing the separations the paper proves: flooding's Θ(m) versus
// near-linear structured schemes, and the time premium the message-frugal
// schemes pay.
//
//	go run ./examples/tradeoffs
package main

import (
	"fmt"
	"log"

	"riseandshine"
	"riseandshine/internal/stats"
)

func main() {
	sizes := []int{128, 256, 512, 1024}
	// Later series overdraw earlier ones where points coincide; cen goes
	// last so its exactly-2(n−1) curve stays visible.
	algs := []struct {
		name   string
		marker byte
	}{
		{"flood", 'f'},
		{"spanner", 's'},
		{"dfs-rank", 'd'},
		{"cen", 'c'},
	}

	msgSeries := make([]stats.Series, len(algs))
	timeSeries := make([]stats.Series, len(algs))
	for i, a := range algs {
		msgSeries[i] = stats.Series{Name: a.name, Marker: a.marker}
		timeSeries[i] = stats.Series{Name: a.name, Marker: a.marker}
	}

	for _, n := range sizes {
		// Constant edge density: m grows as Θ(n²), so flooding's Θ(m)
		// bill separates visibly from the near-linear schemes.
		g := riseandshine.RandomConnected(n, 0.08, int64(n))
		ports := riseandshine.RandomPorts(g, int64(n))
		for i, a := range algs {
			res, err := riseandshine.Run(riseandshine.RunConfig{
				Graph:     g,
				Algorithm: a.name,
				AwakeSet:  []int{0},
				Delays:    riseandshine.RandomDelay{Seed: int64(n)},
				Ports:     ports,
				Seed:      int64(n),
			})
			if err != nil {
				log.Fatal(err)
			}
			if !res.AllAwake {
				log.Fatalf("%s on n=%d: not all awake", a.name, n)
			}
			msgSeries[i].Points = append(msgSeries[i].Points,
				stats.Point{N: float64(n), Y: float64(res.Messages)})
			timeSeries[i].Points = append(timeSeries[i].Points,
				stats.Point{N: float64(n), Y: float64(res.Span)})
		}
	}

	fmt.Print(stats.Plot(stats.PlotConfig{
		Title: "messages vs n (log–log): f=flood c=cen s=spanner d=dfs-rank",
		LogX:  true, LogY: true, Height: 16,
	}, msgSeries...))
	fmt.Println()
	fmt.Print(stats.Plot(stats.PlotConfig{
		Title: "time (τ) vs n (log–log)",
		LogX:  true, LogY: true, Height: 16,
	}, timeSeries...))

	fmt.Println()
	for _, s := range msgSeries {
		slope, _ := stats.LogLogFit(s.Points)
		fmt.Printf("%-9s message growth exponent ≈ %.2f\n", s.Name, slope)
	}
	fmt.Println("\nflooding grows with m; cen stays exactly 2(n−1); dfs-rank pays Θ(n) time")
	fmt.Println("for its Õ(n) messages — the tradeoffs of Table 1, drawn.")
}
