// Concurrent execution: the same per-node state machines running as real
// goroutines with channel-backed inboxes, instead of the deterministic
// discrete-event simulator.
//
// The deterministic engine (package sim) is the measurement instrument:
// reproducible runs, exact message/time accounting, oblivious adversaries.
// The concurrent engine (package runtime, exposed here through the
// internal API used by the library's own tests) demonstrates that the
// algorithms are genuinely asynchronous: correctness survives arbitrary
// Go-scheduler interleavings, which subsume any oblivious delay adversary
// with unbounded-but-finite delays.
//
//	go run ./examples/concurrent
package main

import (
	"fmt"
	"log"
	"time"

	"riseandshine"
	"riseandshine/internal/core"
	"riseandshine/internal/runtime"
	"riseandshine/internal/sim"
)

func main() {
	g := riseandshine.RandomConnected(2000, 0.004, 11)
	fmt.Printf("network: n=%d m=%d — one goroutine per node\n\n", g.N(), g.M())

	for _, tc := range []struct {
		name  string
		model sim.Model
		alg   sim.Algorithm
	}{
		{"flood", sim.Model{Knowledge: sim.KT0, Bandwidth: sim.Congest}, core.Flood{}},
		{"dfs-rank", sim.Model{Knowledge: sim.KT1, Bandwidth: sim.Local}, core.DFSRank{}},
	} {
		start := time.Now()
		res, err := runtime.Run(runtime.Config{
			Graph:    g,
			Model:    tc.model,
			Schedule: riseandshine.RandomWake{Count: 8, Seed: 3},
			Seed:     5,
		}, tc.alg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s awake %d/%d, %d messages, wall time %v\n",
			tc.name, res.AwakeCount, g.N(), res.Messages, time.Since(start).Round(time.Millisecond))
		if !res.AllAwake {
			log.Fatalf("%s: some nodes stayed asleep under concurrency", tc.name)
		}
	}

	fmt.Println("\nboth algorithms tolerate true concurrency: the Go scheduler acts as an")
	fmt.Println("asynchronous adversary, and termination is detected by quiescence.")
}
