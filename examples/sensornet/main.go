// Sensor-network wake-up and the awake distance ρ_awk.
//
// A field of sensors sleeps; an external event triggers a handful of them
// at adversarial positions and times. The time any algorithm needs is at
// least the awake distance ρ_awk = max_u dist(A0, u) (§1.2) — the paper's
// fine-grained yardstick. This example wakes a 32×32 sensor grid from
// event sites of varying density and shows that
//
//   - the synchronous FastWakeUp algorithm (Theorem 4) tracks O(ρ_awk)
//     rounds while sending far fewer messages than flooding on dense
//     deployments, and
//
//   - the asynchronous spanner scheme (Corollary 2) tracks ρ_awk up to a
//     polylog factor at O(n log² n) messages.
//
//     go run ./examples/sensornet
package main

import (
	"fmt"
	"log"

	"riseandshine"
)

func main() {
	g := riseandshine.Torus(32, 32)
	fmt.Printf("sensor field: %d nodes (32×32 torus), %d links\n\n", g.N(), g.M())

	fmt.Printf("%-9s %6s | %-12s %8s %9s | %-12s %8s %9s\n",
		"sites", "rho", "fast-wakeup", "rounds", "msgs", "spanner", "time(τ)", "msgs")
	for _, sites := range []int{1, 4, 16, 64, 256} {
		schedule := riseandshine.RandomWake{Count: sites, Seed: int64(sites)}

		fast, err := riseandshine.Run(riseandshine.RunConfig{
			Graph:     g,
			Algorithm: "fast-wakeup",
			Schedule:  schedule,
			Seed:      2,
		})
		if err != nil {
			log.Fatal(err)
		}
		rho := g.AwakeDistance(fast.AwakeSet())

		span, err := riseandshine.Run(riseandshine.RunConfig{
			Graph:     g,
			Algorithm: "spanner",
			Schedule:  schedule,
			Delays:    riseandshine.RandomDelay{Seed: 11},
			Ports:     riseandshine.RandomPorts(g, 13),
			Seed:      2,
		})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-9d %6d | %12s %8d %9d | %12s %8.1f %9d\n",
			sites, rho, "", fast.Rounds, fast.Messages, "", float64(span.Span), span.Messages)
		if !fast.AllAwake || !span.AllAwake {
			log.Fatalf("sites=%d: not all sensors woke", sites)
		}
	}

	flood, err := riseandshine.Run(riseandshine.RunConfig{
		Graph:     g,
		Algorithm: "flood",
		Schedule:  riseandshine.RandomWake{Count: 256, Seed: 256},
		Seed:      2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nflooding reference at 256 sites: %d messages (2m = %d)\n", flood.Messages, 2*g.M())
	fmt.Println("\nmore event sites ⇒ smaller ρ_awk ⇒ faster wake-up; the message bill of the")
	fmt.Println("structured schemes stays near-linear while flooding always pays Θ(m).")
}
