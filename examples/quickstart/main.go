// Quickstart: wake up a 16×16 grid from a single adversarially-woken node
// with the child-encoding scheme of Theorem 5(B) and compare it to plain
// flooding.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"riseandshine"
)

func main() {
	g := riseandshine.Grid(16, 16)
	diam, err := g.Diameter()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d edges, diameter %d\n\n", g.N(), g.M(), diam)

	for _, alg := range []string{"flood", "cen"} {
		res, err := riseandshine.Run(riseandshine.RunConfig{
			Graph:     g,
			Algorithm: alg,
			AwakeSet:  []int{0},                           // the adversary wakes the corner node
			Delays:    riseandshine.RandomDelay{Seed: 42}, // adversarial asynchrony
			Ports:     riseandshine.RandomPorts(g, 7),     // adversarial port numbering
			Seed:      1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s all awake: %v  messages: %4d  time: %6.2f τ  advice: max %d bits\n",
			alg, res.AllAwake, res.Messages, float64(res.Span), res.AdviceMaxBits)
	}

	fmt.Println("\nflooding crosses every edge twice; the advising scheme pays only ~2 messages")
	fmt.Println("per node at O(log n) advice bits, trading a log factor in time (Theorem 5B).")
}
