package riseandshine_test

import (
	"testing"

	"riseandshine"
)

// TestCongestComplianceMatrix runs every algorithm whose default model is
// CONGEST with strict enforcement on a larger network: no message may
// exceed the O(log n) budget. This pins the bit-level realism of the
// advice schemes' messages.
func TestCongestComplianceMatrix(t *testing.T) {
	g := riseandshine.RandomConnected(600, 0.02, 5)
	ports := riseandshine.RandomPorts(g, 7)
	for _, name := range riseandshine.Algorithms() {
		info, err := riseandshine.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if info.Model.Bandwidth != riseandshine.Congest {
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := riseandshine.Run(riseandshine.RunConfig{
				Graph:         g,
				Algorithm:     name,
				Schedule:      riseandshine.RandomWake{Count: 3, Seed: 2},
				Delays:        riseandshine.RandomDelay{Seed: 3},
				Ports:         ports,
				Seed:          4,
				StrictCongest: true,
				Options:       riseandshine.Options{GossipRounds: 4000},
			})
			if err != nil {
				t.Fatalf("strict CONGEST run failed: %v", err)
			}
			if !res.AllAwake {
				t.Fatalf("only %d/%d awake", res.AwakeCount, res.N)
			}
			if res.CongestViolations != 0 {
				t.Fatalf("%d violations", res.CongestViolations)
			}
		})
	}
}

// TestOracleErrorsPropagateThroughRun: an advising scheme on a
// disconnected graph must fail cleanly at the oracle stage.
func TestOracleErrorsPropagateThroughRun(t *testing.T) {
	b := riseandshine.NewGraphBuilder(4)
	b.AddEdge(0, 1) // {2,3} disconnected
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fip06", "threshold", "cen", "spanner"} {
		if _, err := riseandshine.Run(riseandshine.RunConfig{
			Graph:     g,
			Algorithm: name,
		}); err == nil {
			t.Errorf("%s: expected oracle error on disconnected graph", name)
		}
	}
}
