#!/usr/bin/env bash
# bench.sh — run the engine benchmarks and write a committed JSON artifact.
#
# Usage:
#   scripts/bench.sh [quick|full] [output.json]
#
#   quick  (default) the engine-core subset (BenchmarkRunAsync*,
#          BenchmarkEngine) at a short benchtime; what CI runs per push.
#   full   every benchmark in the repo at the default benchtime; use for
#          the committed BENCH_<pr>.json artifacts.
#
# The JSON is produced by cmd/benchjson (name, ns/op, B/op, allocs/op plus
# custom metrics such as events/s). Set BASELINE=path.json to attach
# baseline numbers and speedup factors from an earlier artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-quick}"
out="${2:-bench.json}"

case "$mode" in
  quick)
    # BenchmarkRunAsync also matches the Calendar/Reuse/Metrics variants by
    # prefix; BenchmarkRunSharded adds the parallel-engine speedup curve;
    # BenchmarkSetup/BenchmarkReseedNode/BenchmarkNodeRand pin the O(1)
    # compact-RNG setup path (incl. the 10^6-node construction case); the
    # graph package contributes the build + BFS-scratch benchmarks.
    pattern='BenchmarkRunAsync|BenchmarkRunSharded|BenchmarkEngine|BenchmarkDiameter|BenchmarkBuild|BenchmarkSetup|BenchmarkReseedNode|BenchmarkNodeRand'
    packages='. ./internal/graph'
    benchtime='1x'
    count=1
    ;;
  full)
    pattern='.'
    packages='. ./internal/graph'
    benchtime='3x'
    count=1
    ;;
  *)
    echo "usage: scripts/bench.sh [quick|full] [output.json]" >&2
    exit 2
    ;;
esac

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "bench.sh: running $mode benchmarks (-bench '$pattern' -benchtime $benchtime)" >&2
# shellcheck disable=SC2086 — $packages is a deliberate word-split list.
go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" -count "$count" -timeout 30m $packages | tee "$raw" >&2

baseline_args=()
if [[ -n "${BASELINE:-}" ]]; then
  baseline_args=(-baseline "$BASELINE")
fi
go run ./cmd/benchjson "${baseline_args[@]}" -o "$out" < "$raw"
echo "bench.sh: wrote $out" >&2
